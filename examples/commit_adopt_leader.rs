//! Commit–adopt in action (§4.5): the primitive behind solving agreement
//! flavored tasks in `OF_fast`.
//!
//! Three demonstrations:
//!
//! 1. Exhaustive validation of commit–adopt over every two-round schedule
//!    of three processes (validity, agreement, convergence).
//! 2. The `OF_fast` scenario: in a *minimal* obstruction-free run, the one
//!    fast process runs solo and commits; finitely-participating processes
//!    need no output — the task is solvable.
//! 3. The `OF` scenario the paper contrasts (§4.5): the fast leader is
//!    forever ahead, its trailing observers keep adopting — they converge
//!    on the leader's value but, racing among themselves, cannot order
//!    themselves (which is why total order stays unsolvable in `OF`).
//!
//! Run with: `cargo run -p gact --example commit_adopt_leader`

use std::collections::HashMap;

use gact_engine::{Engine, MatrixRequest};
use gact_iis::{execute, InputAssignment, ProcessId, ProcessSet, Round, Run};
use gact_tasks::commit_adopt::{check_commit_adopt, CaOutput, CommitAdopt, Grade};

fn input_with_values(values: &[u32]) -> InputAssignment {
    let mut ia = InputAssignment::standard_corners(values.len() - 1);
    for (i, &v) in values.iter().enumerate() {
        ia.values.insert(ProcessId(i as u8), v);
    }
    ia
}

fn main() {
    // --- 1. Exhaustive check over all 2-round schedules -----------------
    let full = ProcessSet::full(3);
    let mut schedules = Vec::new();
    for r1 in Round::enumerate(full) {
        for s2 in r1.participants().nonempty_subsets() {
            for r2 in Round::enumerate(s2) {
                schedules.push(vec![r1.clone(), r2]);
            }
        }
    }
    println!(
        "Checking commit–adopt on {} schedules × 4 input patterns...",
        schedules.len()
    );
    let mut total = 0usize;
    for values in [[7u32, 7, 7], [1, 2, 3], [5, 5, 9], [9, 5, 5]] {
        let ia = input_with_values(&values);
        for schedule in &schedules {
            let exec = execute(&CommitAdopt, &ia, schedule.clone(), 4);
            assert!(exec.violations.is_empty());
            let proposals: HashMap<ProcessId, u32> = schedule[0]
                .participants()
                .iter()
                .map(|p| (p, values[p.0 as usize]))
                .collect();
            let outputs: HashMap<ProcessId, CaOutput> =
                exec.outputs.iter().map(|(p, d)| (*p, d.value)).collect();
            let violations = check_commit_adopt(&proposals, &outputs);
            assert!(violations.is_empty(), "{violations:?}");
            total += 1;
        }
    }
    println!("  {total} executions, zero violations (validity, agreement, convergence).");

    // --- 2. OF_fast: the minimal run — solo leader commits --------------
    println!("\nOF_fast (minimal obstruction-free run): p1 runs solo.");
    let ia = input_with_values(&[10, 20, 30]);
    let solo = Run::new(3, [], [Round::solo(ProcessId(1))]).unwrap();
    let exec = execute(&CommitAdopt, &ia, solo.rounds_prefix(4), 4);
    let d = &exec.outputs[&ProcessId(1)];
    println!(
        "  p1 output {:?} at round {} — the only ∞-participant outputs; task solved.",
        d.value, d.round
    );
    assert_eq!(d.value.grade, Grade::Commit);

    // --- 3. OF: forever-ahead leader, racing observers ------------------
    println!("\nOF (non-minimal): p0 forever ahead; p1, p2 race behind.");
    let ahead = Run::new(
        3,
        [],
        [
            Round::from_blocks([vec![ProcessId(0)], vec![ProcessId(1)], vec![ProcessId(2)]])
                .unwrap(),
            Round::from_blocks([vec![ProcessId(0)], vec![ProcessId(2)], vec![ProcessId(1)]])
                .unwrap(),
        ],
    )
    .unwrap();
    println!("  fast(r) = {:?} (only the leader)", ahead.fast());
    let exec = execute(&CommitAdopt, &ia, ahead.rounds_prefix(6), 6);
    for p in 0..3u8 {
        let d = &exec.outputs[&ProcessId(p)];
        println!(
            "  p{p}: {:?} {:?} at round {}",
            d.value.grade, d.value.value, d.round
        );
    }
    // Agreement pulled everyone to the leader's value...
    assert!(exec.outputs.values().all(|d| d.value.value == 10));
    // ...but p1 and p2 cannot commit (they keep seeing disagreement-risk),
    // which is the §4.5 obstruction to solving total order in OF.
    assert_eq!(exec.outputs[&ProcessId(0)].value.grade, Grade::Commit);
    println!("  leader committed; followers adopted — safety held, but the");
    println!("  followers' relative order stays forever unresolved (§4.5).");

    // --- 4. The registered commit-adopt family through the engine -------
    // The same property checks, as a typed batch request: conformance
    // across every registered model family in one reply.
    println!("\nThe `commit-adopt` scenario family through the engine:");
    let engine = Engine::new();
    let request = MatrixRequest::family("commit-adopt").expect("registered family");
    let reply = engine.matrix(&request).expect("the engine serves it");
    for r in &reply.report.results {
        println!("  {:34} {}", r.cell.label(), r.outcome.detail());
    }
    assert_eq!(
        reply.report.count_kind("protocol-verified"),
        reply.report.results.len(),
        "commit–adopt must verify cleanly under every model"
    );
}
