//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the subset of the proptest API used by this workspace: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, numeric-range and
//! tuple strategies, `collection::{vec, btree_set}`, `sample::select`, the
//! `proptest!` macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test seed; failures report
//! the case index. There is no shrinking — failing inputs are printed via
//! `Debug` where possible by the assertion message instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then draws from the strategy `f` builds from
        /// it (monadic bind).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.erased_generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }

    // Unsigned types only: the span arithmetic (`end - start`) would
    // overflow for full-width signed ranges (same hazard the rand stand-in
    // avoids), and no property test in this workspace samples signed
    // ranges. Add a wrapping_sub-based impl if one ever does.
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by the collection strategies: an exact count or a
    /// (half-open / inclusive) range.
    pub trait IntoSizeRange {
        /// Lower and upper bound (both inclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo) as u64 + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` with a size in the given range.
    ///
    /// The element strategy must be able to produce at least `lo` distinct
    /// values; generation keeps drawing (bounded attempts) until the lower
    /// bound is met.
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (lo, hi) = size.bounds();
        BTreeSetStrategy { element, lo, hi }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.lo + rng.below((self.hi - self.lo) as u64 + 1) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * target.max(1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.lo,
                "btree_set strategy could not reach its minimum size {} (got {})",
                self.lo,
                out.len()
            );
            out
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing one element of `options`, uniformly.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over an empty list");
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (stand-in for `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A test-case failure, produced by `prop_assert!`-style macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        /// Human-readable failure message.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator driving case generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator (tests derive the seed from the test name so
        /// every test sees a different but reproducible stream).
        pub fn seeded(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from a test-name string, deterministically.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::seeded(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            if n.is_power_of_two() {
                return self.next_u64() & (n - 1);
            }
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % n;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a property test needs (stand-in for `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests (stand-in for `proptest::proptest!`).
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in arb_thing()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, cfg.cases, e);
                }
            }
        }
    )*};
}
