//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the measurement subset used by this workspace's benches:
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up, then timed for `sample_size` samples (auto-batching very fast
//! bodies); the median per-iteration time is printed.
//!
//! Set `GACT_BENCH_JSON=<path>` to additionally append one JSON line per
//! benchmark: `{"id": "...", "median_ns": ..., "mean_ns": ..., "samples": N}`.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds a bare parameterized id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the things benches pass as benchmark names.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmarking group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        run_benchmark(&id.into_id(), self.sample_size, |b| f(b));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark body; [`Bencher::iter`] does the timing.
pub struct Bencher {
    /// Iterations per sample (auto-tuned before sampling).
    batch: u64,
    /// Duration of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut body: impl FnMut(&mut Bencher)) {
    // Warmup + batch calibration: find a batch size whose sample takes at
    // least ~2ms, so Instant resolution never dominates.
    let mut bencher = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        body(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(2) || bencher.batch >= 1 << 20 {
            break;
        }
        bencher.batch *= 4;
    }
    // Timed samples.
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        body(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.batch as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{id:<44} time: [median {} mean {}] ({} samples, batch {})",
        fmt_ns(median),
        fmt_ns(mean),
        sample_size,
        bencher.batch
    );
    if let Ok(path) = std::env::var("GACT_BENCH_JSON") {
        if let Ok(mut fh) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let escaped = id.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(
                fh,
                "{{\"id\": \"{escaped}\", \"median_ns\": {median:.1}, \"mean_ns\": {mean:.1}, \"samples\": {sample_size}}}"
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group-runner function (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
