//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the subset used by this workspace — a seeded
//! deterministic generator (`rngs::StdRng`), `Rng::{gen_range, gen_bool}`,
//! and `seq::SliceRandom::shuffle` — with stable output across runs and
//! platforms (SplitMix64), which the samplers' determinism tests rely on.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling API (stand-in for `rand::Rng`).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from a range (`Range` or `RangeInclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen_f64() < p
    }

    /// A uniform sample from `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` below `n` via Lemire-style rejection-free mapping (the
/// tiny modulo bias is irrelevant for test workloads, but we reject to keep
/// the distribution exact).
fn below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

// Unsigned types only: the span arithmetic (`end - start`) would overflow
// for full-width signed ranges, and no call site in this workspace samples
// signed ranges. Add a wrapping_sub-based impl if one ever does.
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator of the stand-in: SplitMix64 — tiny, seeded,
    /// and with stable output across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice utilities (stand-in for `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
