//! Facade crate for the GACT reproduction workspace.
//!
//! The actual implementation lives in the `crates/` workspace members; this
//! root package exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`). It re-exports every
//! member so downstream experiments can depend on a single crate.
//!
//! **The documented entry point is [`engine`]** — a long-lived
//! [`engine::Engine`] session object owning every cache, serving typed,
//! validated requests with structured errors, budgets, and cancellation
//! (see `docs/engine.md` and the README quickstart). The lower-level
//! re-exports remain available for direct pipeline access; their answers
//! are byte-identical to the engine's.

pub use gact; // gact-core's library target is named `gact`
pub use gact_chromatic as chromatic;
pub use gact_engine as engine;
pub use gact_iis as iis;
pub use gact_models as models;
pub use gact_shm as shm;
pub use gact_tasks as tasks;
pub use gact_topology as topology;
