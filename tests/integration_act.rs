//! Cross-crate integration: the ACT pipeline (Corollary 7.1) from task
//! definition through solver verdicts to operational protocol execution.

use gact::{act_solve, certificate_from_act_map, verify_protocol_on_runs, ActVerdict};
use gact_models::{enumerate_runs, SubIisModel, WaitFree};
use gact_tasks::affine::{full_subdivision_task, lt_task, total_order_task};
use gact_tasks::classic::{consensus_task, set_agreement_task};

#[test]
fn solvable_tasks_round_trip_operationally() {
    // For each wait-free solvable control task: solve, certify, extract,
    // execute exhaustively over short wait-free runs.
    for (n, depth) in [(1usize, 0usize), (1, 1), (1, 2), (2, 1)] {
        let at = full_subdivision_task(n, depth);
        let ActVerdict::Solvable {
            depth: d,
            map,
            subdivision,
            ..
        } = act_solve(&at.task, depth + 1)
        else {
            panic!("Chr^{depth} task (n={n}) must be solvable");
        };
        assert_eq!(d, depth, "must solve at exactly its depth");
        let cert = certificate_from_act_map(&at.task, d, &subdivision, &map);
        cert.check_carrier_condition(&at.task).unwrap();
        let wf = WaitFree { n_procs: n + 1 };
        let runs: Vec<_> = enumerate_runs(n + 1, if n == 1 { 1 } else { 0 })
            .into_iter()
            .filter(|r| wf.contains(r))
            .collect();
        let reports = verify_protocol_on_runs(&cert, &at.task, &runs, depth + 6);
        for rep in &reports {
            assert!(
                rep.violations.is_empty(),
                "task Chr^{depth}(n={n}) violated on {:?}: {:?}",
                rep.run,
                rep.violations
            );
        }
    }
}

#[test]
fn impossibility_portfolio() {
    // Consensus: obstructed at every depth, for 2 and 3 processes and
    // larger value sets.
    for n in 1..=2usize {
        assert!(matches!(
            act_solve(&consensus_task(n, &[0, 1]), 2),
            ActVerdict::ImpossibleByObstruction(_)
        ));
    }
    assert!(matches!(
        act_solve(&consensus_task(1, &[0, 1, 2]), 2),
        ActVerdict::ImpossibleByObstruction(_)
    ));
    // Total order: obstructed.
    assert!(matches!(
        act_solve(&total_order_task(2).task, 1),
        ActVerdict::ImpossibleByObstruction(_)
    ));
    // L_t: not wait-free solvable (empty corner images kill the domains).
    assert!(matches!(
        act_solve(&lt_task(2, 1).task, 1),
        ActVerdict::NoMapUpTo(1)
    ));
    // 2-set agreement with three processes: inconclusive at depth 0 (the
    // genuinely higher-dimensional case; Sperner lives beyond bounded
    // search) — but 2-set agreement between TWO processes is trivially
    // solvable (everyone returns its own input).
    let trivial = set_agreement_task(1, &[0, 1], 2);
    assert!(act_solve(&trivial, 1).is_solvable());
}

#[test]
fn solver_depth_scaling_consensus() {
    // The UNSAT proof cost grows with depth but stays feasible; record the
    // verdicts to guard against regressions in the search.
    let task = consensus_task(1, &[0, 1]);
    // Bypass the obstruction check to exercise the raw solver at depths.
    for k in 0..=2usize {
        let sd = gact_chromatic::chr_iter(&task.input, &task.input_geometry, k);
        let problem = gact::MapProblem {
            domain: &sd.complex,
            vertex_carrier: &sd.vertex_carrier,
            task: &task,
        };
        let out = gact::solve(&problem, None);
        assert!(!out.is_solvable(), "consensus solvable at depth {k}?!");
    }
}
