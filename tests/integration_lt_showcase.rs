//! The Proposition 9.2 pipeline exercised across crates, including the
//! geometric-model formulation of `Res_t` (§5) and exhaustive short
//! schedules.

use gact::{build_lt_showcase, verify_protocol_on_runs};
use gact_iis::{ProcessId, ProcessSet, Run};
use gact_models::{enumerate_runs, geometric_t_resilient, SubIisModel, TResilient};
use gact_topology::Simplex;
use std::sync::OnceLock;

fn showcase() -> &'static gact::LtShowcase {
    static SHOW: OnceLock<gact::LtShowcase> = OnceLock::new();
    SHOW.get_or_init(|| build_lt_showcase(2, 1, 3).expect("Proposition 9.2 witness"))
}

#[test]
fn lt_solvable_on_geometric_res1_runs() {
    // Membership via the *geometric* π-formulation of Res_1 (§5) instead
    // of the combinatorial fast-set one; the protocol must solve exactly
    // the same runs.
    let show = showcase();
    let geometric = geometric_t_resilient(3, 1);
    let combinatorial = TResilient { n_procs: 3, t: 1 };
    let runs: Vec<Run> = enumerate_runs(3, 0)
        .into_iter()
        .filter(|r| geometric.contains(r))
        .collect();
    assert!(!runs.is_empty());
    for r in &runs {
        assert!(combinatorial.contains(r), "model formulations disagree");
    }
    let reports = verify_protocol_on_runs(&show.certificate, &show.affine.task, &runs, 14);
    for rep in &reports {
        assert!(
            rep.violations.is_empty(),
            "violations on {:?}: {:?}",
            rep.run,
            rep.violations
        );
    }
}

#[test]
fn lt_outputs_land_in_lt_simplices() {
    // Beyond Δ-compliance: each decided output vertex belongs to L_1 (not
    // merely to Chr² s), and the joint outputs of fast processes span a
    // simplex of L_1.
    let show = showcase();
    let res1 = TResilient { n_procs: 3, t: 1 };
    let runs: Vec<Run> = enumerate_runs(3, 0)
        .into_iter()
        .filter(|r| res1.contains(r))
        .collect();
    let reports = verify_protocol_on_runs(&show.certificate, &show.affine.task, &runs, 14);
    for rep in &reports {
        assert!(rep.violations.is_empty());
        for v in rep.outputs.values() {
            assert!(show.affine.selected.contains_vertex(*v));
        }
        if !rep.outputs.is_empty() {
            let joint = Simplex::new(rep.outputs.values().copied());
            assert!(
                show.affine.selected.contains(&joint),
                "joint outputs {joint:?} not a simplex of L_1"
            );
        }
    }
}

#[test]
fn lt_landing_rounds_respect_band_stages() {
    // Runs landing in deeper bands must land at later rounds: the stage
    // gate in action. The fair run lands in R_0 (round ≥ 2); a run
    // spiralling near a corner for a while lands strictly later.
    let show = showcase();
    let fair = Run::fair(3);
    let fair_round = show
        .certificate
        .landing_round(&fair, 20)
        .expect("fair lands");
    assert!(fair_round >= 2, "R_0 was stabilized at stage 2");

    // A run that hugs corner 0 for three rounds before opening up.
    let hug = Run::new(
        3,
        vec![
            gact_iis::Round::from_blocks([vec![ProcessId(0)], vec![ProcessId(1), ProcessId(2)]])
                .unwrap();
            3
        ],
        [gact_iis::Round::from_blocks([vec![ProcessId(0), ProcessId(1), ProcessId(2)]]).unwrap()],
    )
    .unwrap();
    let hug_round = show
        .certificate
        .landing_round(&hug, 24)
        .expect("hugging run lands");
    assert!(
        hug_round >= fair_round,
        "corner-hugging run landed earlier ({hug_round}) than the fair run ({fair_round})"
    );
}

#[test]
fn lt_trailing_process_gets_dragged_to_an_output() {
    // A run where p2 trails forever behind a fast pair: p2 is infinitely
    // participating, so it must decide too — condition (1) of Def 4.1.
    let show = showcase();
    let trailing = Run::new(
        3,
        [],
        [
            gact_iis::Round::from_blocks([vec![ProcessId(0), ProcessId(1)], vec![ProcessId(2)]])
                .unwrap(),
        ],
    )
    .unwrap();
    assert_eq!(
        trailing.fast(),
        [ProcessId(0), ProcessId(1)]
            .into_iter()
            .collect::<ProcessSet>()
    );
    let reports = verify_protocol_on_runs(&show.certificate, &show.affine.task, &[trailing], 20);
    assert!(
        reports[0].violations.is_empty(),
        "{:?}",
        reports[0].violations
    );
    assert_eq!(reports[0].outputs.len(), 3, "all three must decide");
}
