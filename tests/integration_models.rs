//! Cross-crate integration: models × runs × projection × tasks.

use gact_iis::{ProcessId, ProcessSet, Run};
use gact_models::{
    affine_projection, canonical_coloring_at_depth, enumerate_runs, Adversary, FastCompanion,
    ObstructionFree, RunSampler, SamplerConfig, SubIisModel, TResilient, WaitFree,
};

#[test]
fn model_hierarchy_on_enumerated_runs() {
    // Res_0 ⊆ Res_1 ⊆ Res_2 = WF-side; OF_k grows with k; adversary
    // t-resilient matches Res_t — all checked exhaustively on short runs.
    let runs = enumerate_runs(3, 1);
    let wf = WaitFree { n_procs: 3 };
    let res: Vec<TResilient> = (0..=2).map(|t| TResilient { n_procs: 3, t }).collect();
    let of: Vec<ObstructionFree> = (1..=3).map(|k| ObstructionFree { n_procs: 3, k }).collect();
    let adv1 = Adversary::t_resilient(3, 1);
    for r in &runs {
        assert!(wf.contains(r));
        for t in 0..2 {
            if res[t].contains(r) {
                assert!(res[t + 1].contains(r), "Res_t not monotone on {r:?}");
            }
        }
        for k in 0..2 {
            if of[k].contains(r) {
                assert!(of[k + 1].contains(r), "OF_k not monotone on {r:?}");
            }
        }
        assert_eq!(res[1].contains(r), adv1.contains(r));
        // fast ∪ slow partitions the process space.
        assert_eq!(r.fast().union(r.slow()), ProcessSet::full(3));
        assert!(r.fast().intersection(r.slow()).is_empty());
        // fast is always non-empty and within ∞-part.
        assert!(!r.fast().is_empty());
        assert!(r.fast().is_subset_of(r.inf_part()));
    }
}

#[test]
fn projection_chi_equals_fast_exhaustively() {
    // χ(π(r)) = fast(r) over every 1-round-cycle run on 3 processes.
    for r in enumerate_runs(3, 0) {
        let p = affine_projection(&r);
        let chi = canonical_coloring_at_depth(&p, 2, 3);
        assert_eq!(chi, r.fast(), "χ(π(r)) ≠ fast(r) for {r:?}");
    }
}

#[test]
fn minimal_run_is_a_fixed_point_and_in_same_models() {
    let res1 = TResilient { n_procs: 3, t: 1 };
    let of2 = ObstructionFree { n_procs: 3, k: 2 };
    for r in enumerate_runs(3, 1) {
        let m = r.minimal();
        assert!(m.same_run(&m.minimal()));
        // fast-determined models cannot distinguish r from minimal(r).
        assert_eq!(res1.contains(&r), res1.contains(&m), "{r:?}");
        assert_eq!(of2.contains(&r), of2.contains(&m), "{r:?}");
    }
}

#[test]
fn fast_companion_is_the_minimal_slice() {
    let of1 = ObstructionFree { n_procs: 3, k: 1 };
    let of1_fast = FastCompanion {
        inner: ObstructionFree { n_procs: 3, k: 1 },
    };
    for r in enumerate_runs(3, 0) {
        if of1_fast.contains(&r) {
            assert!(of1.contains(&r));
            assert!(r.same_run(&r.minimal()));
        }
        if of1.contains(&r) {
            assert!(of1_fast.contains(&r.minimal()), "{r:?}");
        }
    }
}

#[test]
fn sampled_runs_populate_their_models() {
    let mut sampler = RunSampler::new(4, 7, SamplerConfig::default());
    let res2 = TResilient { n_procs: 4, t: 2 };
    let fast: ProcessSet = [ProcessId(0), ProcessId(3)].into_iter().collect();
    for _ in 0..50 {
        let r = sampler.sample_with_fast(fast, ProcessSet::empty());
        assert_eq!(r.fast(), fast);
        assert!(res2.contains(&r));
    }
    // Plain sampling stays within WF and yields valid runs.
    let wf = WaitFree { n_procs: 4 };
    for _ in 0..200 {
        let r = sampler.sample();
        assert!(wf.contains(&r));
        assert!(r.fast().is_subset_of(r.inf_part()));
    }
}

#[test]
fn compactness_diagonal_argument_on_run_space() {
    // Lemma 5.1 operationally: from any sequence of runs, extract a
    // subsequence converging in the run metric. We realize the diagonal
    // argument on a concrete family and check Cauchy behaviour.
    let mut sampler = RunSampler::new(
        3,
        123,
        SamplerConfig {
            max_prefix: 3,
            max_cycle: 2,
        },
    );
    let seq: Vec<Run> = (0..200).map(|_| sampler.sample()).collect();

    // Diagonalize: repeatedly restrict to the majority first-k-rounds
    // class.
    let mut pool: Vec<Run> = seq.clone();
    let mut chosen: Vec<Run> = Vec::new();
    for k in 0..6usize {
        use std::collections::HashMap;
        let mut classes: HashMap<Vec<gact_iis::Round>, Vec<Run>> = HashMap::new();
        for r in &pool {
            classes
                .entry(r.rounds_prefix(k + 1))
                .or_default()
                .push(r.clone());
        }
        let (_, biggest) = classes
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .expect("pool non-empty");
        pool = biggest;
        chosen.push(pool[0].clone());
        if pool.len() == 1 {
            break;
        }
    }
    // The chosen subsequence is Cauchy: distances shrink as 1/(1+k).
    for (i, pair) in chosen.windows(2).enumerate() {
        let d = pair[0].distance(&pair[1]);
        assert!(
            d <= 1.0 / (1.0 + i as f64),
            "diagonal subsequence not Cauchy at step {i}: d = {d}"
        );
    }
}
