//! Cross-crate integration: shared memory → IIS → topology.
//!
//! The full simulation stack of the paper's §1 step (1): SM interleavings
//! drive Borowsky–Gafni IS objects; the extracted IIS rounds feed the
//! abstract view semantics; the views land on chromatic-subdivision
//! vertices.

use std::collections::HashMap;

use gact_chromatic::standard_simplex;
use gact_iis::view::{chr_chain, run_subdivision_vertices, run_views, ViewArena};
use gact_iis::{ProcessId, ProcessSet};
use gact_shm::{simulate_iis, RandomScheduler, RoundRobin};
use gact_topology::{Simplex, VertexId};

#[test]
fn shm_runs_land_on_subdivision_simplices() {
    // Simulate IIS over shared memory with random schedules, replay the
    // extracted rounds through the view semantics, and locate every view
    // as a vertex of Chr^k(s); each layer's views must span a simplex.
    let n = 2usize; // 3 processes
    let (base, geom) = standard_simplex(n);
    let chain = chr_chain(&base, &geom, 2);
    let omega: HashMap<ProcessId, VertexId> = (0..=n as u8)
        .map(|i| (ProcessId(i), VertexId(i as u32)))
        .collect();
    let mut landed = 0usize;
    for seed in 0..30u64 {
        let mut sched = RandomScheduler::seeded(seed);
        let sim = simulate_iis(n + 1, ProcessSet::full(n + 1), 2, &mut sched, 1_000_000);
        if sim.rounds.len() < 2 || !sim.stuck.is_empty() {
            continue;
        }
        let verts = run_subdivision_vertices(&sim.rounds, &omega, &chain);
        for k in 1..=2usize {
            let config = Simplex::new(verts[k].values().copied());
            assert!(
                chain[k - 1].complex.complex().contains(&config),
                "seed {seed}: layer {k} configuration not a simplex"
            );
        }
        landed += 1;
    }
    assert!(landed > 10, "too few complete simulations to be meaningful");
}

#[test]
fn crashed_simulations_still_produce_valid_runs() {
    for seed in 0..20u64 {
        let mut sched = RandomScheduler::seeded(seed);
        sched.crash(ProcessId(0));
        let sim = simulate_iis(3, ProcessSet::full(3), 3, &mut sched, 1_000_000);
        // Nesting of participants along extracted rounds.
        let mut prev: Option<ProcessSet> = None;
        for r in &sim.rounds {
            if let Some(prev) = prev {
                assert!(r.participants().is_subset_of(prev));
            }
            prev = Some(r.participants());
        }
        // The survivors keep making progress through the layers.
        if let Some(last) = sim.rounds.last() {
            assert!(last.participants().is_subset_of(ProcessSet::full(3)));
        }
    }
}

#[test]
fn fair_shm_simulation_matches_fair_iis_views() {
    // Under round-robin, the extracted IIS run is the fair run, and the
    // simulated views equal the abstract fair-run views.
    let mut sched = RoundRobin::default();
    let parts = ProcessSet::full(3);
    let sim = simulate_iis(3, parts, 2, &mut sched, 1_000_000);
    assert_eq!(sim.rounds.len(), 2);
    for r in &sim.rounds {
        assert_eq!(r.participants(), parts);
        assert_eq!(r.blocks().len(), 1, "round-robin must look concurrent");
    }
    let inputs: HashMap<ProcessId, u32> = parts.iter().map(|p| (p, p.0 as u32)).collect();
    let mut arena = ViewArena::new();
    let replay = run_views(&sim.rounds, &inputs, &mut arena);
    for (p, v) in &sim.views[1] {
        assert_eq!(sim.arena.render(*v), arena.render(replay[2][p]));
    }
}
