//! Theorem 6.1, both directions, across crates.
//!
//! "⇐": a certificate (terminating subdivision + δ) yields a protocol that
//! solves the task in the model — covered operationally here and in the
//! `lt` showcase.
//!
//! "⇒": from a solving protocol, the proof reconstructs a terminating
//! subdivision by stabilizing exactly the simplices whose vertices have
//! all decided. We run that reconstruction against the extracted protocol
//! itself and check that the rebuilt subdivision again satisfies both GACT
//! conditions with the induced δ.

use std::collections::HashMap;

use gact::{act_solve, certificate_from_act_map, ActVerdict, GactCertificate};
use gact_chromatic::SimplicialMap;
use gact_chromatic::{ColorSet, TerminatingSubdivision};
use gact_models::{enumerate_runs, SubIisModel, WaitFree};
use gact_tasks::affine::full_subdivision_task;
use gact_topology::{Simplex, VertexId};

/// Queries the certificate protocol's decision at a *subdivision vertex*:
/// the decision a process makes when its snapshot is exactly that vertex's
/// position with that vertex's colors — the bridge from operational
/// protocol back to combinatorial data.
fn vertex_decision(
    cert: &GactCertificate,
    sub: &TerminatingSubdivision,
    v: VertexId,
) -> Option<VertexId> {
    let color = sub.current().color(v);
    let pos = sub.geometry().coord(v).clone();
    let tau = cert.landing_simplex(&[pos], ColorSet::singleton(color), usize::MAX)?;
    let w = sub.current().vertex_of_color(&tau, color)?;
    Some(cert.map.apply(w))
}

#[test]
fn protocol_to_subdivision_reconstruction() {
    // Start from a solvable task and its ACT certificate.
    let at = full_subdivision_task(1, 1);
    let ActVerdict::Solvable {
        depth,
        map,
        subdivision,
        ..
    } = act_solve(&at.task, 2)
    else {
        panic!("expected solvable");
    };
    let cert = certificate_from_act_map(&at.task, depth, &subdivision, &map);

    // Reconstruct: iterate chromatic subdivision stages; at each stage,
    // stabilize the simplices all of whose vertices decide under the
    // protocol (the Σ_k of the Theorem 6.1 "⇒" proof).
    let mut rebuilt = TerminatingSubdivision::new(&at.task.input, &at.task.input_geometry);
    let mut delta_assignments: HashMap<VertexId, VertexId> = HashMap::new();
    for _ in 0..=depth + 1 {
        let current = rebuilt.current().clone();
        let geometry = rebuilt.geometry().clone();
        let stage = rebuilt.stage();
        let mut to_stabilize = Vec::new();
        for s in current.complex().iter() {
            let decisions: Vec<Option<VertexId>> = s
                .iter()
                .map(|v| {
                    // Decision of the process at this vertex at this round,
                    // reconstructed from the original certificate's
                    // protocol semantics (stage-gated: Σ_k collects what
                    // has decided by round k).
                    let color = current.color(v);
                    let pos = geometry.coord(v).clone();
                    cert.landing_simplex(&[pos], ColorSet::singleton(color), stage)
                        .and_then(|tau| {
                            cert.subdivision
                                .current()
                                .vertex_of_color(&tau, color)
                                .map(|w| cert.map.apply(w))
                        })
                })
                .collect();
            if decisions.iter().all(|d| d.is_some()) {
                to_stabilize.push(s.clone());
                for (v, d) in s.iter().zip(decisions) {
                    delta_assignments.insert(v, d.expect("checked above"));
                }
            }
        }
        rebuilt.stabilize(to_stabilize);
        rebuilt.advance();
    }

    // The reconstruction must cover everything the original covered.
    assert!(
        !rebuilt.stable_complex().is_empty(),
        "reconstruction found no decided simplices"
    );
    // Condition (b) for the induced δ on the rebuilt stable complex.
    let induced = SimplicialMap::new(
        rebuilt
            .stable_complex()
            .vertex_set()
            .into_iter()
            .map(|v| (v, delta_assignments[&v])),
    );
    let rebuilt_cert = GactCertificate::new(rebuilt, induced);
    rebuilt_cert
        .check_carrier_condition(&at.task)
        .expect("rebuilt certificate must satisfy condition (b)");

    // Condition (a): admissible for the wait-free model (every enumerated
    // run lands).
    let wf = WaitFree { n_procs: 2 };
    for run in enumerate_runs(2, 1).into_iter().filter(|r| wf.contains(r)) {
        assert!(
            rebuilt_cert.landing_round(&run, 10).is_ok(),
            "rebuilt subdivision not admissible for {run:?}"
        );
    }
}

#[test]
fn vertex_decisions_agree_with_delta_on_stable_vertices() {
    // On the original certificate, the protocol's per-vertex decision at a
    // stable vertex is exactly δ at that vertex.
    let at = full_subdivision_task(2, 1);
    let ActVerdict::Solvable {
        depth,
        map,
        subdivision,
        ..
    } = act_solve(&at.task, 1)
    else {
        panic!("expected solvable");
    };
    let cert = certificate_from_act_map(&at.task, depth, &subdivision, &map);
    let sub = &cert.subdivision;
    for v in sub.stable_complex().vertex_set() {
        let got = vertex_decision(&cert, sub, v).expect("stable vertices decide");
        assert_eq!(got, cert.map.apply(v), "vertex {v:?}");
    }
}

#[test]
fn landing_rounds_are_monotone_in_depth() {
    // A deeper certificate can only land later or equal for the same run
    // (finer stable simplices).
    let shallow_task = full_subdivision_task(1, 1);
    let deep_task = full_subdivision_task(1, 2);
    let mk = |at: &gact_tasks::AffineTask, max: usize| {
        let ActVerdict::Solvable {
            depth,
            map,
            subdivision,
            ..
        } = act_solve(&at.task, max)
        else {
            panic!()
        };
        certificate_from_act_map(&at.task, depth, &subdivision, &map)
    };
    let shallow = mk(&shallow_task, 1);
    let deep = mk(&deep_task, 2);
    let wf = WaitFree { n_procs: 2 };
    for run in enumerate_runs(2, 0).into_iter().filter(|r| wf.contains(r)) {
        let a = shallow.landing_round(&run, 10).unwrap();
        let b = deep.landing_round(&run, 10).unwrap();
        assert!(a <= b, "shallow landed at {a}, deep at {b} for {run:?}");
    }
    let _ = Simplex::vertex(VertexId(0));
}
